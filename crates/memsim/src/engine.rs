//! The trace-replay simulation engine.
//!
//! Plays a request stream against a [`MemoryDevice`] through a memory
//! controller with per-bank queues, FCFS or FR-FCFS scheduling, and
//! per-channel data-bus contention — the same pipeline the paper's modified
//! NVMain 2.0 provides. Produces [`SimStats`] (latency, bandwidth, EPB).

use crate::addr::{AddressMap, Interleave};
use crate::device::MemoryDevice;
use crate::request::{CompletedRequest, MemRequest};
use crate::stats::SimStats;
use comet_units::Time;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduler {
    /// First-come first-served per bank.
    Fcfs,
    /// First-ready FCFS: row-buffer hits within a lookahead window bypass
    /// older misses (the standard high-performance DRAM policy).
    FrFcfs {
        /// Lookahead window (queue entries examined).
        window: usize,
    },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::FrFcfs { window: 8 }
    }
}

/// How arrival timestamps are honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplayMode {
    /// Respect trace arrival times (requests queue if the device is slow).
    #[default]
    Paced,
    /// Ignore arrival times: issue as fast as the device allows. Measures
    /// sustainable throughput.
    Saturation,
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Arrival pacing.
    pub replay: ReplayMode,
    /// Label recorded in the stats.
    pub workload: String,
}

impl SimConfig {
    /// Paced FR-FCFS with a workload label.
    pub fn paced(workload: impl Into<String>) -> Self {
        SimConfig {
            scheduler: Scheduler::default(),
            replay: ReplayMode::Paced,
            workload: workload.into(),
        }
    }

    /// Saturation FR-FCFS with a workload label.
    pub fn saturation(workload: impl Into<String>) -> Self {
        SimConfig {
            scheduler: Scheduler::default(),
            replay: ReplayMode::Saturation,
            workload: workload.into(),
        }
    }
}

/// Runs `requests` against `device` and returns aggregate statistics.
///
/// Requests are queued per (channel, bank); at every step the bank that can
/// issue earliest fires. Data transfers contend on each channel's bus;
/// reads additionally pay the device's interface delay before the requester
/// sees the data.
///
/// # Examples
///
/// ```
/// use comet_units::{ByteCount, Time};
/// use memsim::{run_simulation, DramConfig, DramDevice, MemOp, MemRequest, SimConfig};
///
/// let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
/// let reqs: Vec<MemRequest> = (0..100)
///     .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Read, i * 64, ByteCount::new(64)))
///     .collect();
/// let stats = run_simulation(&mut dev, &reqs, &SimConfig::saturation("stream"));
/// assert_eq!(stats.completed, 100);
/// assert!(stats.bandwidth().as_gigabytes_per_second() > 0.1);
/// ```
pub fn run_simulation(
    device: &mut dyn MemoryDevice,
    requests: &[MemRequest],
    config: &SimConfig,
) -> SimStats {
    let topo = device.topology();
    let map = AddressMap::new(
        topo.channels,
        topo.banks,
        topo.rows,
        topo.columns,
        topo.line_bytes,
        // XOR-folded channel selection: strides that are multiples of the
        // channel count still spread across channels, as real controllers
        // arrange with permutation-based interleaving.
        Interleave::RowBankColumnChannelXor,
    )
    .expect("device topology dimensions must be powers of two");

    let nbanks = (topo.channels * topo.banks) as usize;
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); nbanks];
    let decoded: Vec<_> = requests.iter().map(|r| map.decode(r.address)).collect();
    let arrivals: Vec<Time> = requests
        .iter()
        .map(|r| match config.replay {
            ReplayMode::Paced => r.arrival,
            ReplayMode::Saturation => Time::ZERO,
        })
        .collect();

    for (i, d) in decoded.iter().enumerate() {
        queues[(d.channel * topo.banks + d.bank) as usize].push_back(i);
    }

    let mut bank_free = vec![Time::ZERO; nbanks];
    let mut bus_free = vec![Time::ZERO; topo.channels as usize];
    let mut stats = SimStats::new(device.name(), config.workload.clone());
    let mut latencies: Vec<Time> = Vec::with_capacity(requests.len());
    let mut remaining: usize = requests.len();

    while remaining > 0 {
        // Choose the bank that can issue earliest.
        let mut best: Option<(Time, usize, usize)> = None; // (issue, bank, queue pos)
        for (b, queue) in queues.iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            // Scheduling: pick position within the window.
            let (pos, ready) = match config.scheduler {
                Scheduler::Fcfs => {
                    let idx = queue[0];
                    let ready = bank_free[b].max(arrivals[idx]);
                    (0, device.bank_available(&decoded[idx], ready))
                }
                Scheduler::FrFcfs { window } => {
                    // First-ready: among the window, take the request that
                    // can actually issue earliest (skips entries whose
                    // subarray/row resource is still busy); row-buffer hits
                    // win ties so open rows are drained first.
                    let mut chosen = (0usize, Time::from_seconds(f64::INFINITY), false);
                    for (p, &idx) in queue.iter().take(window).enumerate() {
                        let base = bank_free[b].max(arrivals[idx]);
                        let ready = device.bank_available(&decoded[idx], base);
                        let hit = device.row_hit(&decoded[idx]);
                        let better = ready < chosen.1 || (ready == chosen.1 && hit && !chosen.2);
                        if better {
                            chosen = (p, ready, hit);
                        }
                    }
                    (chosen.0, chosen.1)
                }
            };
            match best {
                Some((t, _, _)) if ready >= t => {}
                _ => best = Some((ready, b, pos)),
            }
        }

        let (issue, bank, pos) = best.expect("remaining > 0 implies a nonempty queue");
        let idx = queues[bank].remove(pos).expect("position was validated");
        let req = &requests[idx];
        let loc = &decoded[idx];

        let timing = device.access_line(loc, req.op, issue, req.payload.as_ref());
        let ch = loc.channel as usize;
        let transfer_start = timing.data_ready_at.max(bus_free[ch]);
        let transfer_end = transfer_start + timing.bus_occupancy;
        bus_free[ch] = transfer_end;
        // The device's bank_free_at is authoritative for bank occupancy
        // (devices include transfer time where the array can't pipeline);
        // extending it to transfer_end here would serialize access latency
        // into occupancy and forbid command pipelining.
        bank_free[bank] = timing.bank_free_at;

        let finished = transfer_end + device.interface_delay();
        let done = CompletedRequest {
            request: MemRequest {
                arrival: arrivals[idx],
                ..*req
            },
            issued: issue,
            finished,
        };
        stats.record(&done);
        latencies.push(done.latency());
        stats.energy.access += timing.energy;
        remaining -= 1;
    }

    stats.energy.refresh = device.drain_accumulated_energy();
    stats.finalize_background(device.background_power());
    stats.finalize_percentiles(&mut latencies);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{DramConfig, DramDevice};
    use crate::pcm::{EpcmConfig, EpcmDevice};
    use crate::request::MemOp;
    use comet_units::ByteCount;

    fn stream(n: u64, stride: u64, op: MemOp) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::new(i, Time::ZERO, op, i * stride, ByteCount::new(64)))
            .collect()
    }

    fn paced_stream(n: u64, interval_ns: f64) -> Vec<MemRequest> {
        (0..n)
            .map(|i| {
                MemRequest::new(
                    i,
                    Time::from_nanos(i as f64 * interval_ns),
                    MemOp::Read,
                    i * 64,
                    ByteCount::new(64),
                )
            })
            .collect()
    }

    #[test]
    fn all_requests_complete() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let reqs = stream(500, 64, MemOp::Read);
        let s = run_simulation(&mut dev, &reqs, &SimConfig::saturation("t"));
        assert_eq!(s.completed, 500);
        assert_eq!(s.bytes.value(), 500 * 64);
        assert!(s.makespan > Time::ZERO);
    }

    #[test]
    fn sequential_stream_saturates_near_bus_limit() {
        // x8 DDR3-1600 bus moves 64 B in 40 ns => 1.6 GB/s peak.
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let reqs = stream(2000, 64, MemOp::Read);
        let s = run_simulation(&mut dev, &reqs, &SimConfig::saturation("stream"));
        let bw = s.bandwidth().as_gigabytes_per_second();
        assert!((1.0..=1.6).contains(&bw), "stream BW {bw} GB/s");
    }

    #[test]
    fn row_thrashing_is_slower_than_row_streaming_on_one_bank() {
        // Pin all traffic to bank 0 so row behaviour (not bank/bus
        // parallelism) decides throughput. Row-major layout: line =
        // (row*banks + bank)*columns + column.
        let cfg = DramConfig::ddr3_1600_2d();
        let banks = cfg.topology.banks;
        let cols = cfg.topology.columns;
        let line_of = |row: u64, col: u64| ((row * banks) * cols + col) * 64;
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for i in 0..800u64 {
            // Hits: sweep columns within each row before moving on.
            hits.push(MemRequest::new(
                i,
                Time::ZERO,
                MemOp::Read,
                line_of(i / cols, i % cols),
                ByteCount::new(64),
            ));
            // Misses: alternate rows every access.
            misses.push(MemRequest::new(
                i,
                Time::ZERO,
                MemOp::Read,
                line_of(i % 2 * 1000 + i / 2, 0),
                ByteCount::new(64),
            ));
        }
        let mk = || DramDevice::new(DramConfig::ddr3_1600_2d());
        let s1 = run_simulation(&mut mk(), &hits, &SimConfig::saturation("hits"));
        let s2 = run_simulation(&mut mk(), &misses, &SimConfig::saturation("misses"));
        assert!(
            s1.bandwidth().as_gigabytes_per_second() > s2.bandwidth().as_gigabytes_per_second(),
            "hits {} vs misses {}",
            s1.bandwidth(),
            s2.bandwidth()
        );
        // Thrashing also burns activation energy.
        assert!(s2.energy.access > s1.energy.access);
    }

    #[test]
    fn frfcfs_beats_fcfs_on_mixed_locality() {
        // Interleave two streams to the same bank, different rows: FR-FCFS
        // reorders to batch row hits.
        let mut reqs = Vec::new();
        for i in 0..400u64 {
            // Alternate between row A and row B columns in bank 0.
            let addr = if i % 2 == 0 {
                i / 2 * 64 * 8
            } else {
                (1 << 22) + i / 2 * 64 * 8
            };
            reqs.push(MemRequest::new(
                i,
                Time::ZERO,
                MemOp::Read,
                addr,
                ByteCount::new(64),
            ));
        }
        let mut d1 = DramDevice::new(DramConfig::ddr3_1600_2d());
        let mut d2 = DramDevice::new(DramConfig::ddr3_1600_2d());
        let fcfs = run_simulation(
            &mut d1,
            &reqs,
            &SimConfig {
                scheduler: Scheduler::Fcfs,
                replay: ReplayMode::Saturation,
                workload: "mix".into(),
            },
        );
        let frfcfs = run_simulation(
            &mut d2,
            &reqs,
            &SimConfig {
                scheduler: Scheduler::FrFcfs { window: 16 },
                replay: ReplayMode::Saturation,
                workload: "mix".into(),
            },
        );
        assert!(
            frfcfs.makespan <= fcfs.makespan,
            "FR-FCFS {:?} should not be slower than FCFS {:?}",
            frfcfs.makespan,
            fcfs.makespan
        );
    }

    #[test]
    fn paced_replay_respects_arrivals() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        // One request every 1 us: device is never the bottleneck.
        let reqs = paced_stream(50, 1000.0);
        let s = run_simulation(&mut dev, &reqs, &SimConfig::paced("slow"));
        // Makespan dominated by arrival spacing, not service.
        assert!(s.makespan.as_micros() >= 49.0);
        // Latency stays near the unloaded service time.
        assert!(s.avg_latency().as_nanos() < 200.0);
    }

    #[test]
    fn saturation_ignores_arrivals() {
        let reqs = paced_stream(50, 1000.0);
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let s = run_simulation(&mut dev, &reqs, &SimConfig::saturation("fast"));
        assert!(s.makespan.as_micros() < 10.0);
    }

    #[test]
    fn epcm_writes_throttle_throughput() {
        let mk = || EpcmDevice::new(EpcmConfig::epcm_mm());
        let reads = stream(1000, 64, MemOp::Read);
        let writes = stream(1000, 64, MemOp::Write);
        let sr = run_simulation(&mut mk(), &reads, &SimConfig::saturation("r"));
        let sw = run_simulation(&mut mk(), &writes, &SimConfig::saturation("w"));
        assert!(
            sr.bandwidth().as_gigabytes_per_second() > sw.bandwidth().as_gigabytes_per_second()
        );
    }

    #[test]
    fn energy_includes_refresh_and_background() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        // Slow paced trace spanning several refresh intervals.
        let reqs = paced_stream(100, 1000.0); // 100 us total
        let s = run_simulation(&mut dev, &reqs, &SimConfig::paced("slow"));
        assert!(
            s.energy.refresh > comet_units::Energy::ZERO,
            "refresh energy"
        );
        assert!(s.energy.background > comet_units::Energy::ZERO);
        assert!(s.energy.access > comet_units::Energy::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let reqs = stream(300, 64 * 131, MemOp::Read);
        let run = || {
            let mut dev = DramDevice::new(DramConfig::ddr4_2400_2d());
            run_simulation(&mut dev, &reqs, &SimConfig::saturation("det"))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
