//! DRAM timing and energy models (2D and 3D-stacked DDR3/DDR4).
//!
//! Bank-state-machine granularity, matching what the paper's NVMain
//! baseline models: row-buffer hits pay only CAS latency, misses pay
//! precharge + activate + CAS, refresh windows block banks every tREFI and
//! cost energy. The 2D presets model the paper's single-device ranks
//! ("1 rank/channel, 1 device/rank"), which throttles the data bus to the
//! device's narrow I/O width; the 3D presets model stacked devices with
//! wide TSV-based internal buses and multiple channels.

use crate::addr::DecodedAddress;
use crate::device::{AccessTiming, DeviceFactory, MemoryDevice, Topology};
use crate::request::MemOp;
use comet_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Keep rows open after access (good for locality).
    #[default]
    Open,
    /// Precharge immediately after each access.
    Closed,
}

/// DRAM timing parameters (datasheet style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Clock period.
    pub t_ck: Time,
    /// CAS latency, cycles.
    pub cl: u32,
    /// RAS-to-CAS delay, cycles.
    pub t_rcd: u32,
    /// Row precharge, cycles.
    pub t_rp: u32,
    /// Row active minimum, cycles.
    pub t_ras: u32,
    /// Write recovery, cycles.
    pub t_wr: u32,
    /// Refresh cycle time.
    pub t_rfc: Time,
    /// Refresh interval.
    pub t_refi: Time,
    /// Device data-bus width, bits (per channel).
    pub bus_bits: u32,
}

impl DramTimings {
    /// Time for `n` cycles.
    pub fn cycles(&self, n: u32) -> Time {
        self.t_ck * n as f64
    }

    /// Bus occupancy to move one cache line of `line_bytes` over the
    /// double-data-rate bus.
    pub fn line_transfer(&self, line_bytes: u64) -> Time {
        let beats = (line_bytes * 8) as f64 / self.bus_bits as f64;
        // DDR: two beats per clock.
        self.t_ck * (beats / 2.0)
    }
}

/// DRAM energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramEnergy {
    /// Energy per row activation (+ implied precharge).
    pub activate: Energy,
    /// Array + I/O energy per read line.
    pub read_line: Energy,
    /// Array + I/O energy per write line.
    pub write_line: Energy,
    /// Energy per refresh operation (per bank).
    pub refresh_op: Energy,
    /// Standby/background power of the whole device.
    pub background: Power,
}

/// A complete DRAM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Report name (e.g. `"2D_DDR3"`).
    pub name: String,
    /// Shape.
    pub topology: Topology,
    /// Timing parameters.
    pub timings: DramTimings,
    /// Energy parameters.
    pub energy: DramEnergy,
    /// Row policy.
    pub row_policy: RowPolicy,
}

impl DramConfig {
    /// The paper's `2D_DDR3` baseline: DDR3-1600, one single-device channel.
    pub fn ddr3_1600_2d() -> Self {
        DramConfig {
            name: "2D_DDR3".into(),
            topology: Topology {
                channels: 1,
                banks: 8,
                rows: 1 << 16,
                columns: 128,
                line_bytes: 64,
            },
            timings: DramTimings {
                t_ck: Time::from_nanos(1.25),
                cl: 11,
                t_rcd: 11,
                t_rp: 11,
                t_ras: 28,
                t_wr: 12,
                t_rfc: Time::from_nanos(260.0),
                t_refi: Time::from_micros(7.8),
                bus_bits: 8,
            },
            energy: DramEnergy {
                activate: Energy::from_nanojoules(2.2),
                read_line: Energy::from_nanojoules(12.0),
                write_line: Energy::from_nanojoules(13.0),
                refresh_op: Energy::from_nanojoules(28.0),
                // Module infrastructure (RCD, termination, PLL) dominates
                // idle power on a 2D DIMM.
                background: Power::from_milliwatts(1200.0),
            },
            row_policy: RowPolicy::Open,
        }
    }

    /// `3D_DDR3`: a single 3D-stacked device — one channel with a 32-bit
    /// TSV bus, four stacked dies contributing 32 banks, faster refresh
    /// recovery (smaller per-die arrays) and cheaper I/O. The modest
    /// stacking the paper's "1 device/rank" configuration implies, not an
    /// HBM-class part.
    pub fn ddr3_3d() -> Self {
        let base = Self::ddr3_1600_2d();
        DramConfig {
            name: "3D_DDR3".into(),
            topology: Topology {
                channels: 1,
                banks: 32,
                rows: 1 << 14,
                columns: 128,
                line_bytes: 64,
            },
            timings: DramTimings {
                bus_bits: 32,
                t_rfc: Time::from_nanos(160.0),
                ..base.timings
            },
            energy: DramEnergy {
                activate: Energy::from_nanojoules(1.4),
                read_line: Energy::from_nanojoules(4.5),
                write_line: Energy::from_nanojoules(5.0),
                refresh_op: Energy::from_nanojoules(12.0),
                background: Power::from_milliwatts(350.0),
            },
            row_policy: RowPolicy::Open,
        }
    }

    /// The paper's `2D_DDR4` baseline: DDR4-2400, one single-device channel,
    /// 16 banks (bank groups flattened).
    pub fn ddr4_2400_2d() -> Self {
        DramConfig {
            name: "2D_DDR4".into(),
            topology: Topology {
                channels: 1,
                banks: 16,
                rows: 1 << 16,
                columns: 128,
                line_bytes: 64,
            },
            timings: DramTimings {
                t_ck: Time::from_nanos(0.833),
                cl: 16,
                t_rcd: 16,
                t_rp: 16,
                t_ras: 39,
                t_wr: 18,
                t_rfc: Time::from_nanos(350.0),
                t_refi: Time::from_micros(7.8),
                bus_bits: 8,
            },
            energy: DramEnergy {
                activate: Energy::from_nanojoules(1.7),
                read_line: Energy::from_nanojoules(8.5),
                write_line: Energy::from_nanojoules(9.0),
                refresh_op: Energy::from_nanojoules(35.0),
                background: Power::from_milliwatts(1000.0),
            },
            row_policy: RowPolicy::Open,
        }
    }

    /// `3D_DDR4`: a single 3D-stacked DDR4 device — one channel with a
    /// 32-bit TSV bus and 64 stacked banks; the strongest electronic
    /// baseline in the paper (best BW/EPB among DRAMs).
    pub fn ddr4_3d() -> Self {
        let base = Self::ddr4_2400_2d();
        DramConfig {
            name: "3D_DDR4".into(),
            topology: Topology {
                channels: 1,
                banks: 64,
                rows: 1 << 12,
                columns: 128,
                line_bytes: 64,
            },
            timings: DramTimings {
                bus_bits: 32,
                t_rfc: Time::from_nanos(190.0),
                ..base.timings
            },
            energy: DramEnergy {
                activate: Energy::from_nanojoules(1.1),
                read_line: Energy::from_nanojoules(3.5),
                write_line: Energy::from_nanojoules(4.0),
                refresh_op: Energy::from_nanojoules(15.0),
                background: Power::from_milliwatts(300.0),
            },
            row_policy: RowPolicy::Open,
        }
    }

    /// All four DRAM baselines of Fig. 9.
    pub fn all_baselines() -> Vec<DramConfig> {
        vec![
            Self::ddr3_1600_2d(),
            Self::ddr3_3d(),
            Self::ddr4_2400_2d(),
            Self::ddr4_3d(),
        ]
    }
}

/// A stateful DRAM device (open rows + refresh bookkeeping).
///
/// # Examples
///
/// ```
/// use memsim::{DramConfig, DramDevice, MemoryDevice};
///
/// let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
/// assert_eq!(dev.name(), "2D_DDR3");
/// assert_eq!(dev.topology().banks, 8);
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramConfig,
    /// Open row per (channel, bank), `None` = precharged.
    open_rows: Vec<Option<u64>>,
    /// Next refresh deadline per (channel, bank).
    next_refresh: Vec<Time>,
    /// Accumulated refresh energy (drained by the engine).
    refresh_energy: Energy,
}

impl DramDevice {
    /// Creates a device in the all-precharged state.
    pub fn new(config: DramConfig) -> Self {
        let nbanks = (config.topology.channels * config.topology.banks) as usize;
        DramDevice {
            open_rows: vec![None; nbanks],
            next_refresh: vec![config.timings.t_refi; nbanks],
            refresh_energy: Energy::ZERO,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn bank_index(&self, loc: &DecodedAddress) -> usize {
        (loc.channel * self.config.topology.banks + loc.bank) as usize
    }

    /// Takes (and clears) refresh energy accumulated since the last call.
    pub fn drain_refresh_energy(&mut self) -> Energy {
        std::mem::replace(&mut self.refresh_energy, Energy::ZERO)
    }
}

impl DeviceFactory for DramConfig {
    fn device_name(&self) -> String {
        self.name.clone()
    }

    fn build(&self) -> Box<dyn MemoryDevice> {
        Box::new(DramDevice::new(self.clone()))
    }

    fn device_topology(&self) -> Topology {
        self.topology
    }
}

impl MemoryDevice for DramDevice {
    fn name(&self) -> String {
        self.config.name.clone()
    }

    fn topology(&self) -> Topology {
        self.config.topology
    }

    fn bank_available(&mut self, loc: &DecodedAddress, at: Time) -> Time {
        let idx = self.bank_index(loc);
        let mut avail = at;
        // Catch up on any refresh windows that started before `avail`.
        while self.next_refresh[idx] <= avail {
            let refresh_start = self.next_refresh[idx];
            let refresh_end = refresh_start + self.config.timings.t_rfc;
            self.refresh_energy += self.config.energy.refresh_op;
            self.open_rows[idx] = None; // refresh closes the row
            self.next_refresh[idx] = refresh_start + self.config.timings.t_refi;
            avail = avail.max(refresh_end);
        }
        avail
    }

    fn access(&mut self, loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming {
        let idx = self.bank_index(loc);
        let t = &self.config.timings;
        let e = &self.config.energy;

        let (array_delay, mut energy) = match self.open_rows[idx] {
            Some(open) if open == loc.row => (t.cycles(t.cl), Energy::ZERO),
            Some(_) => (t.cycles(t.t_rp + t.t_rcd + t.cl), e.activate),
            None => (t.cycles(t.t_rcd + t.cl), e.activate),
        };

        energy += match op {
            MemOp::Read => e.read_line,
            MemOp::Write => e.write_line,
        };

        let transfer = t.line_transfer(self.config.topology.line_bytes);
        let data_ready = issue + array_delay;
        let bank_free = match op {
            MemOp::Read => data_ready + transfer,
            MemOp::Write => data_ready + transfer + t.cycles(t.t_wr),
        };

        self.open_rows[idx] = match self.config.row_policy {
            RowPolicy::Open => Some(loc.row),
            RowPolicy::Closed => None,
        };

        AccessTiming {
            bank_free_at: bank_free,
            data_ready_at: data_ready,
            bus_occupancy: transfer,
            energy,
        }
    }

    fn row_hit(&self, loc: &DecodedAddress) -> bool {
        self.open_rows[(loc.channel * self.config.topology.banks + loc.bank) as usize]
            == Some(loc.row)
    }

    fn drain_accumulated_energy(&mut self) -> Energy {
        self.drain_refresh_energy()
    }

    fn background_power(&self) -> Power {
        self.config.energy.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(bank: u64, row: u64) -> DecodedAddress {
        DecodedAddress {
            channel: 0,
            bank,
            row,
            column: 0,
        }
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let first = dev.access(&loc(0, 5), MemOp::Read, Time::ZERO);
        // Same row: hit, only CL.
        let hit = dev.access(&loc(0, 5), MemOp::Read, first.bank_free_at);
        // Different row: precharge + activate + CL.
        let miss = dev.access(&loc(0, 9), MemOp::Read, hit.bank_free_at);
        let hit_delay = hit.data_ready_at - first.bank_free_at;
        let miss_delay = miss.data_ready_at - hit.bank_free_at;
        assert!(miss_delay.as_nanos() > hit_delay.as_nanos() * 2.0);
        // Hit pays no activation energy.
        assert!(hit.energy < miss.energy);
    }

    #[test]
    fn first_access_pays_activation_only() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let t = dev.config().timings;
        let a = dev.access(&loc(0, 0), MemOp::Read, Time::ZERO);
        let expect = t.cycles(t.t_rcd + t.cl);
        assert!((a.data_ready_at.as_nanos() - expect.as_nanos()).abs() < 1e-9);
    }

    #[test]
    fn closed_policy_never_hits() {
        let mut cfg = DramConfig::ddr3_1600_2d();
        cfg.row_policy = RowPolicy::Closed;
        let mut dev = DramDevice::new(cfg);
        let a = dev.access(&loc(0, 5), MemOp::Read, Time::ZERO);
        let b = dev.access(&loc(0, 5), MemOp::Read, a.bank_free_at);
        // Second access to the same row still pays activation.
        assert!(b.energy >= dev.config().energy.activate);
    }

    #[test]
    fn narrow_bus_makes_long_transfers() {
        // x8 device at DDR3-1600: 64 B = 64 beats = 40 ns.
        let t = DramConfig::ddr3_1600_2d().timings;
        assert!((t.line_transfer(64).as_nanos() - 40.0).abs() < 1e-9);
        // 3D stack x32: 4x faster.
        let t3 = DramConfig::ddr3_3d().timings;
        assert!((t3.line_transfer(64).as_nanos() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_blocks_and_costs_energy() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let t_refi = dev.config().timings.t_refi;
        let t_rfc = dev.config().timings.t_rfc;
        // Just past the first refresh deadline: bank blocked until rfc done.
        let avail = dev.bank_available(&loc(0, 0), t_refi + Time::from_nanos(1.0));
        assert!(avail >= t_refi + t_rfc);
        assert!(dev.drain_refresh_energy() > Energy::ZERO);
        // Drained: second call returns zero.
        assert_eq!(dev.drain_refresh_energy(), Energy::ZERO);
    }

    #[test]
    fn refresh_catches_up_over_long_gaps() {
        let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
        let t_refi = dev.config().timings.t_refi;
        // Jump 10 intervals ahead: all missed refreshes charged.
        let _ = dev.bank_available(&loc(0, 0), t_refi * 10.5);
        let e = dev.drain_refresh_energy();
        let per_op = dev.config().energy.refresh_op;
        assert!((e.as_joules() / per_op.as_joules() - 10.0).abs() < 0.5);
    }

    #[test]
    fn writes_hold_bank_longer_than_reads() {
        let mut dev = DramDevice::new(DramConfig::ddr4_2400_2d());
        let r = dev.access(&loc(0, 0), MemOp::Read, Time::ZERO);
        let mut dev2 = DramDevice::new(DramConfig::ddr4_2400_2d());
        let w = dev2.access(&loc(0, 0), MemOp::Write, Time::ZERO);
        assert!(w.bank_free_at > r.bank_free_at);
    }

    #[test]
    fn presets_are_distinct_and_named() {
        let names: Vec<String> = DramConfig::all_baselines()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, ["2D_DDR3", "3D_DDR3", "2D_DDR4", "3D_DDR4"]);
        // 3D variants have wider TSV buses, more banks and cheaper reads.
        assert!(
            DramConfig::ddr4_3d().timings.bus_bits > DramConfig::ddr4_2400_2d().timings.bus_bits
        );
        assert!(DramConfig::ddr4_3d().topology.banks > DramConfig::ddr4_2400_2d().topology.banks);
        assert!(
            DramConfig::ddr4_3d().energy.read_line < DramConfig::ddr4_2400_2d().energy.read_line
        );
    }
}
