//! NVMain-style text trace I/O.
//!
//! The paper drives its evaluation with SPEC memory traces through NVMain
//! 2.0. NVMain's text format is `<cycle> <R|W> <hex-address> [data...]`;
//! this module reads and writes the timing-relevant subset
//! (`cycle op address`) so externally captured traces can be replayed and
//! synthetic traces can be exported.

use crate::request::{MemOp, MemRequest};
use comet_units::{ByteCount, Time};
use std::fmt;
use std::io::{self, BufRead, Write};

/// CPU clock used to convert trace cycles to wall time (NVMain traces are
/// CPU-cycle-stamped; 2 GHz is its common default).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceClock {
    /// Cycle period.
    pub period: Time,
}

impl TraceClock {
    /// A 2 GHz CPU clock.
    pub fn two_ghz() -> Self {
        TraceClock {
            period: Time::from_nanos(0.5),
        }
    }

    /// Converts a cycle stamp to time.
    pub fn time_of(&self, cycle: u64) -> Time {
        self.period * cycle as f64
    }

    /// Converts a time back to cycles, rounding to nearest. Rounding (not
    /// truncation) makes quantization idempotent — `cycle_of(time_of(c)) ==
    /// c` despite the period not being a dyadic float — so a
    /// write→read→write round trip of a trace file is byte-identical.
    pub fn cycle_of(&self, t: Time) -> u64 {
        (t.as_seconds() / self.period.as_seconds()).round() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        Self::two_ghz()
    }
}

/// A parse failure with line context.
#[derive(Debug)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl From<ParseTraceError> for io::Error {
    fn from(e: ParseTraceError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Parses an NVMain-style text trace into requests.
///
/// Lines are `<cycle> <R|W> <hex address>`; `#`-prefixed lines and blank
/// lines are skipped; any extra whitespace-separated fields (data payload,
/// thread id) are ignored.
///
/// # Errors
///
/// Returns [`ParseTraceError`] (wrapped in `io::Error`) on malformed lines,
/// or the underlying I/O error.
///
/// # Examples
///
/// ```
/// use memsim::{read_trace, TraceClock};
///
/// let text = "0 R 1000\n10 W 1040 deadbeef 0\n# comment\n20 R 1080\n";
/// let reqs = read_trace(text.as_bytes(), TraceClock::two_ghz(), 64)?;
/// assert_eq!(reqs.len(), 3);
/// assert_eq!(reqs[1].address, 0x1040);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn read_trace<R: BufRead>(
    reader: R,
    clock: TraceClock,
    line_bytes: u64,
) -> io::Result<Vec<MemRequest>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let err = |message: String| ParseTraceError {
            line: lineno + 1,
            message,
        };
        let cycle: u64 = fields
            .next()
            .ok_or_else(|| err("missing cycle".into()))?
            .parse()
            .map_err(|e| err(format!("bad cycle: {e}")))?;
        let op = match fields.next() {
            Some("R") | Some("r") => MemOp::Read,
            Some("W") | Some("w") => MemOp::Write,
            other => return Err(err(format!("bad op {other:?}")).into()),
        };
        let addr_str = fields.next().ok_or_else(|| err("missing address".into()))?;
        let addr_str = addr_str.trim_start_matches("0x");
        let address =
            u64::from_str_radix(addr_str, 16).map_err(|e| err(format!("bad address: {e}")))?;
        out.push(MemRequest::new(
            out.len() as u64,
            clock.time_of(cycle),
            op,
            address,
            ByteCount::new(line_bytes),
        ));
    }
    Ok(out)
}

/// Writes requests as an NVMain-style text trace.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(
    mut writer: W,
    requests: &[MemRequest],
    clock: TraceClock,
) -> io::Result<()> {
    for r in requests {
        writeln!(
            writer,
            "{} {} {:x}",
            clock.cycle_of(r.arrival),
            r.op,
            r.address
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let clock = TraceClock::two_ghz();
        let reqs = vec![
            MemRequest::new(0, clock.time_of(0), MemOp::Read, 0x1000, ByteCount::new(64)),
            MemRequest::new(
                1,
                clock.time_of(100),
                MemOp::Write,
                0xdead40,
                ByteCount::new(64),
            ),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &reqs, clock).unwrap();
        let back = read_trace(buf.as_slice(), clock, 64).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].address, 0x1000);
        assert_eq!(back[1].op, MemOp::Write);
        assert_eq!(back[1].address, 0xdead40);
        assert_eq!(clock.cycle_of(back[1].arrival), 100);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0 R 40\n\n# trailer\n";
        let reqs = read_trace(text.as_bytes(), TraceClock::default(), 64).unwrap();
        assert_eq!(reqs.len(), 1);
    }

    #[test]
    fn accepts_extra_fields_and_0x_prefix() {
        let text = "5 W 0xff80 cafebabe 3\n";
        let reqs = read_trace(text.as_bytes(), TraceClock::default(), 64).unwrap();
        assert_eq!(reqs[0].address, 0xff80);
        assert_eq!(reqs[0].op, MemOp::Write);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["x R 40\n", "0 Q 40\n", "0 R zz\n", "0 R\n"] {
            let err = read_trace(bad.as_bytes(), TraceClock::default(), 64);
            assert!(err.is_err(), "{bad:?} should fail");
            let msg = format!("{}", err.unwrap_err());
            assert!(msg.contains("line 1"), "error should cite the line: {msg}");
        }
    }

    #[test]
    fn clock_conversion() {
        let clock = TraceClock::two_ghz();
        assert!((clock.time_of(1000).as_nanos() - 500.0).abs() < 1e-9);
        assert_eq!(clock.cycle_of(Time::from_nanos(500.0)), 1000);
    }

    #[test]
    fn cycle_quantization_is_idempotent() {
        // Regression: truncating cycle_of dropped cycles whose period
        // product rounded slightly low (31 -> 30 at 2 GHz), so re-writing a
        // read trace changed its bytes.
        let clock = TraceClock::two_ghz();
        for cycle in [0u64, 1, 31, 62, 124, 241, 1_000_003, (1 << 40) + 31] {
            assert_eq!(clock.cycle_of(clock.time_of(cycle)), cycle, "{cycle}");
        }
    }
}
