//! Physical-address decomposition.
//!
//! Maps a flat physical byte address onto `{channel, bank, row, column}`
//! coordinates. The interleaving order decides which address bits move
//! fastest; cache-line interleaving across channels/banks (the default, and
//! what COMET does across its MDM banks) spreads consecutive lines over all
//! parallel resources.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Decoded device coordinates of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Channel index.
    pub channel: u64,
    /// Bank index (within the channel).
    pub bank: u64,
    /// Row index (within the bank).
    pub row: u64,
    /// Column index: the cache-line slot within the row.
    pub column: u64,
}

/// Bit-interleaving order for address decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Interleave {
    /// `row : bank : column : channel` (line-interleaved across channels,
    /// then columns within a bank row — maximizes channel/bank parallelism
    /// for streams). The usual high-throughput choice.
    #[default]
    RowBankColumnChannel,
    /// `row : column : bank : channel` (consecutive lines hit different
    /// banks first — maximizes bank-level parallelism for strided access).
    RowColumnBankChannel,
    /// Like [`Interleave::RowBankColumnChannel`] but the channel index is
    /// XOR-folded with the base-C digits of the line quotient, so strided
    /// streams whose stride is a multiple of the channel count still
    /// spread across channels (permutation-based interleaving). Bijective
    /// for power-of-two channel counts.
    RowBankColumnChannelXor,
}

/// XOR-fold of all base-`modulus` digits of `q` (`modulus` a power of two).
/// A single-channel map has no digits to fold (and `q /= 1` would never
/// terminate), so modulus 1 folds to 0.
fn xor_fold(mut q: u64, modulus: u64) -> u64 {
    if modulus <= 1 {
        return 0;
    }
    let mut acc = 0;
    while q > 0 {
        acc ^= q % modulus;
        q /= modulus;
    }
    acc
}

/// Errors from address-map construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressMapError {
    /// A dimension was zero or not a power of two.
    NotPowerOfTwo {
        /// The offending dimension name.
        dimension: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for AddressMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressMapError::NotPowerOfTwo { dimension, value } => {
                write!(f, "{dimension} must be a nonzero power of two, got {value}")
            }
        }
    }
}

impl std::error::Error for AddressMapError {}

/// An address map over power-of-two dimensions.
///
/// # Examples
///
/// ```
/// use memsim::{AddressMap, Interleave};
///
/// let map = AddressMap::new(4, 8, 4096, 128, 64, Interleave::default())?;
/// let d = map.decode(0x40);       // second cache line
/// assert_eq!(d.channel, 1);        // line-interleaved across channels
/// assert_eq!(map.encode(d), 0x40); // bijective
/// # Ok::<(), memsim::AddressMapError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    channels: u64,
    banks: u64,
    rows: u64,
    columns: u64,
    line_bytes: u64,
    interleave: Interleave,
}

fn check_pow2(dimension: &'static str, value: u64) -> Result<u32, AddressMapError> {
    if value == 0 || !value.is_power_of_two() {
        Err(AddressMapError::NotPowerOfTwo { dimension, value })
    } else {
        Ok(value.trailing_zeros())
    }
}

impl AddressMap {
    /// Creates a map.
    ///
    /// `columns` counts cache-line slots per row; `line_bytes` is the
    /// cache-line size.
    ///
    /// # Errors
    ///
    /// Every dimension must be a nonzero power of two.
    pub fn new(
        channels: u64,
        banks: u64,
        rows: u64,
        columns: u64,
        line_bytes: u64,
        interleave: Interleave,
    ) -> Result<Self, AddressMapError> {
        check_pow2("channels", channels)?;
        check_pow2("banks", banks)?;
        check_pow2("rows", rows)?;
        check_pow2("columns", columns)?;
        check_pow2("line_bytes", line_bytes)?;
        Ok(AddressMap {
            channels,
            banks,
            rows,
            columns,
            line_bytes,
            interleave,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Banks per channel.
    pub fn banks(&self) -> u64 {
        self.banks
    }

    /// Rows per bank.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Cache-line columns per row.
    pub fn columns(&self) -> u64 {
        self.columns
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels * self.banks * self.rows * self.columns * self.line_bytes
    }

    /// Decodes a physical byte address (wraps modulo capacity).
    pub fn decode(&self, address: u64) -> DecodedAddress {
        let line = (address / self.line_bytes) % (self.capacity_bytes() / self.line_bytes);
        match self.interleave {
            Interleave::RowBankColumnChannel => {
                let channel = line % self.channels;
                let rest = line / self.channels;
                let column = rest % self.columns;
                let rest = rest / self.columns;
                let bank = rest % self.banks;
                let row = rest / self.banks;
                DecodedAddress {
                    channel,
                    bank,
                    row,
                    column,
                }
            }
            Interleave::RowColumnBankChannel => {
                let channel = line % self.channels;
                let rest = line / self.channels;
                let bank = rest % self.banks;
                let rest = rest / self.banks;
                let column = rest % self.columns;
                let row = rest / self.columns;
                DecodedAddress {
                    channel,
                    bank,
                    row,
                    column,
                }
            }
            Interleave::RowBankColumnChannelXor => {
                let r = line % self.channels;
                let q = line / self.channels;
                let channel = r ^ xor_fold(q, self.channels);
                let column = q % self.columns;
                let rest = q / self.columns;
                let bank = rest % self.banks;
                let row = rest / self.banks;
                DecodedAddress {
                    channel,
                    bank,
                    row,
                    column,
                }
            }
        }
    }

    /// Re-encodes coordinates into the canonical byte address.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn encode(&self, d: DecodedAddress) -> u64 {
        assert!(
            d.channel < self.channels,
            "channel {} out of range",
            d.channel
        );
        assert!(d.bank < self.banks, "bank {} out of range", d.bank);
        assert!(d.row < self.rows, "row {} out of range", d.row);
        assert!(d.column < self.columns, "column {} out of range", d.column);
        let line = match self.interleave {
            Interleave::RowBankColumnChannel => {
                ((d.row * self.banks + d.bank) * self.columns + d.column) * self.channels
                    + d.channel
            }
            Interleave::RowColumnBankChannel => {
                ((d.row * self.columns + d.column) * self.banks + d.bank) * self.channels
                    + d.channel
            }
            Interleave::RowBankColumnChannelXor => {
                let q = (d.row * self.banks + d.bank) * self.columns + d.column;
                q * self.channels + (d.channel ^ xor_fold(q, self.channels))
            }
        };
        line * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(4, 8, 4096, 128, 64, Interleave::RowBankColumnChannel).unwrap()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let err = AddressMap::new(3, 8, 4096, 128, 64, Interleave::default());
        assert!(matches!(
            err,
            Err(AddressMapError::NotPowerOfTwo {
                dimension: "channels",
                ..
            })
        ));
        assert!(AddressMap::new(4, 0, 4096, 128, 64, Interleave::default()).is_err());
    }

    #[test]
    fn capacity() {
        // 4 * 8 * 4096 * 128 * 64 B = 1 GiB.
        assert_eq!(map().capacity_bytes(), 1 << 30);
    }

    #[test]
    fn consecutive_lines_interleave_across_channels() {
        let m = map();
        for i in 0..8u64 {
            let d = m.decode(i * 64);
            assert_eq!(d.channel, i % 4, "line {i}");
        }
    }

    #[test]
    fn decode_encode_roundtrip_exhaustive_small() {
        let m = AddressMap::new(2, 4, 16, 8, 64, Interleave::RowBankColumnChannel).unwrap();
        for line in 0..(m.capacity_bytes() / 64) {
            let addr = line * 64;
            let d = m.decode(addr);
            assert_eq!(m.encode(d), addr, "line {line}");
        }
    }

    #[test]
    fn roundtrip_both_interleaves() {
        for il in [
            Interleave::RowBankColumnChannel,
            Interleave::RowColumnBankChannel,
            Interleave::RowBankColumnChannelXor,
        ] {
            let m = AddressMap::new(4, 8, 64, 16, 64, il).unwrap();
            for addr in (0..m.capacity_bytes()).step_by(64 * 97) {
                let d = m.decode(addr);
                assert_eq!(m.encode(d), addr, "{il:?} addr {addr:#x}");
            }
        }
    }

    #[test]
    fn sub_line_offsets_map_to_same_line() {
        let m = map();
        assert_eq!(m.decode(0x40), m.decode(0x41));
        assert_eq!(m.decode(0x40), m.decode(0x7f));
        assert_ne!(m.decode(0x40), m.decode(0x80));
    }

    #[test]
    fn addresses_wrap_modulo_capacity() {
        let m = map();
        let cap = m.capacity_bytes();
        assert_eq!(m.decode(0x40), m.decode(cap + 0x40));
    }

    #[test]
    fn xor_interleave_spreads_channel_multiples() {
        // A stride that is a multiple of the channel count serializes on
        // plain modulo interleaving but spreads under XOR folding.
        let m = AddressMap::new(4, 8, 4096, 128, 64, Interleave::RowBankColumnChannelXor).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in 0..16u64 {
            seen.insert(m.decode(k * 32 * 64).channel); // 32-line stride
        }
        assert_eq!(seen.len(), 4, "all channels touched");
        // Still bijective.
        for k in 0..4096u64 {
            let addr = k * 64;
            assert_eq!(m.encode(m.decode(addr)), addr);
        }
    }

    #[test]
    fn xor_interleave_single_channel_terminates() {
        // Regression: xor_fold(q, 1) used to loop forever (`q /= 1`), which
        // hung every single-channel device on its first nonzero address.
        let m = AddressMap::new(1, 8, 4096, 128, 64, Interleave::RowBankColumnChannelXor).unwrap();
        let last_line = m.capacity_bytes() - 64;
        for k in [1u64, 7, 1 << 20, last_line] {
            let d = m.decode(k);
            assert_eq!(d.channel, 0);
            assert_eq!(m.encode(m.decode(k & !63)), k & !63);
        }
    }

    #[test]
    fn bank_first_interleave_spreads_banks() {
        let m = AddressMap::new(1, 8, 64, 16, 64, Interleave::RowColumnBankChannel).unwrap();
        for i in 0..8u64 {
            assert_eq!(m.decode(i * 64).bank, i % 8);
        }
    }
}
