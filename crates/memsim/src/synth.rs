//! Synthetic SPEC-like trace generation.
//!
//! We do not redistribute SPEC traces; instead each [`WorkloadProfile`]
//! captures the axes of memory behaviour that actually drive the Fig. 9
//! comparisons — footprint, row locality, read:write mix, spatial pattern
//! and demand intensity — with per-benchmark parameter sets named after the
//! SPEC CPU2006 workloads whose memory behaviour they mimic (see each
//! constructor). Generation is deterministic given a seed.

use crate::request::{MemOp, MemRequest};
use comet_units::{ByteCount, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spatial access pattern of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential streaming through the footprint.
    Stream,
    /// Fixed-stride walks (e.g. column sweeps).
    Strided {
        /// Stride in bytes.
        stride: u64,
    },
    /// Uniform random lines over the footprint.
    Random,
    /// Random with row-buffer locality: with probability `locality` the
    /// next access stays in the current row.
    Clustered {
        /// Probability of staying within the current row.
        locality: f64,
    },
}

/// A synthetic workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Name used in reports (SPEC-like identifier).
    pub name: String,
    /// Fraction of reads in `[0, 1]`.
    pub read_fraction: f64,
    /// Memory footprint touched by the workload.
    pub footprint: ByteCount,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Mean inter-arrival time between requests (demand intensity of the
    /// multi-core front-end the trace represents).
    pub interarrival: Time,
    /// Number of requests to generate.
    pub requests: usize,
    /// Cache-line size.
    pub line_bytes: u64,
}

impl WorkloadProfile {
    /// Generates the request stream (deterministic for a given seed).
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]` or the footprint is
    /// smaller than one line.
    pub fn generate(&self, seed: u64) -> Vec<MemRequest> {
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read fraction must be in [0,1]"
        );
        let lines = self.footprint.value() / self.line_bytes;
        assert!(lines >= 1, "footprint smaller than one line");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&self.name));
        let mut out = Vec::with_capacity(self.requests);
        let mut now = 0.0f64;
        let mut cursor: u64 = rng.gen_range(0..lines);
        // Row span used by the Clustered pattern (typical 8 KiB row).
        let row_lines = (8192 / self.line_bytes).max(1);

        for i in 0..self.requests {
            let line = match self.pattern {
                AccessPattern::Stream => {
                    cursor = (cursor + 1) % lines;
                    cursor
                }
                AccessPattern::Strided { stride } => {
                    cursor = (cursor + stride / self.line_bytes) % lines;
                    cursor
                }
                AccessPattern::Random => rng.gen_range(0..lines),
                AccessPattern::Clustered { locality } => {
                    if rng.gen_bool(locality.clamp(0.0, 1.0)) {
                        let row_base = cursor / row_lines * row_lines;
                        row_base + rng.gen_range(0..row_lines.min(lines))
                    } else {
                        cursor = rng.gen_range(0..lines);
                        cursor
                    }
                }
            };
            let op = if rng.gen_bool(self.read_fraction) {
                MemOp::Read
            } else {
                MemOp::Write
            };
            // Exponential-ish inter-arrival (two-uniform average keeps it
            // simple and deterministic in distribution shape).
            let jitter = rng.gen_range(0.0..2.0);
            now += self.interarrival.as_seconds() * jitter;
            out.push(MemRequest::new(
                i as u64,
                Time::from_seconds(now),
                op,
                line * self.line_bytes,
                ByteCount::new(self.line_bytes),
            ));
        }
        out
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each profile gets decorrelated randomness for equal seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The SPEC-like suite used for the Fig. 9 evaluation.
///
/// Intensities model a many-core front-end issuing misses at memory-bound
/// rates (a line every fraction of a ns in the aggregate — the terabyte-
/// per-second demand regime the paper's introduction motivates), which is
/// what lets the photonic memories differentiate — electronic memories
/// saturate and stretch the makespan instead.
pub fn spec_like_suite(requests: usize) -> Vec<WorkloadProfile> {
    let line = 64;
    let mk = |name: &str,
              read_fraction: f64,
              footprint_mib: u64,
              pattern: AccessPattern,
              interarrival_ns: f64| WorkloadProfile {
        name: name.into(),
        read_fraction,
        footprint: ByteCount::from_mib(footprint_mib),
        pattern,
        interarrival: Time::from_nanos(interarrival_ns),
        requests,
        line_bytes: line,
    };
    vec![
        // Pointer-chasing graph workload: random, read-heavy.
        mk("mcf-like", 0.85, 1536, AccessPattern::Random, 0.5),
        // Fluid dynamics: streaming, write-rich.
        mk("lbm-like", 0.55, 512, AccessPattern::Stream, 0.25),
        // Wave propagation: streaming reads.
        mk("bwaves-like", 0.9, 768, AccessPattern::Stream, 0.3),
        // Compiler: clustered with moderate locality, mixed ops.
        mk(
            "gcc-like",
            0.75,
            256,
            AccessPattern::Clustered { locality: 0.6 },
            0.75,
        ),
        // Lattice QCD: strided column sweeps.
        mk(
            "milc-like",
            0.8,
            1024,
            AccessPattern::Strided { stride: 4096 },
            0.4,
        ),
        // Quantum simulation: pure streaming reads.
        mk("libquantum-like", 0.95, 128, AccessPattern::Stream, 0.2),
        // Discrete-event simulation: random, mixed.
        mk("omnetpp-like", 0.7, 384, AccessPattern::Random, 0.6),
        // Sparse linear algebra: clustered, low locality.
        mk(
            "soplex-like",
            0.82,
            640,
            AccessPattern::Clustered { locality: 0.35 },
            0.45,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pattern: AccessPattern) -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            read_fraction: 0.8,
            footprint: ByteCount::from_mib(16),
            pattern,
            interarrival: Time::from_nanos(2.0),
            requests: 4000,
            line_bytes: 64,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = profile(AccessPattern::Random);
        assert_eq!(p.generate(42), p.generate(42));
        assert_ne!(p.generate(42), p.generate(43));
    }

    #[test]
    fn read_fraction_respected() {
        let p = profile(AccessPattern::Random);
        let reqs = p.generate(7);
        let reads = reqs.iter().filter(|r| r.op.is_read()).count() as f64;
        let frac = reads / reqs.len() as f64;
        assert!((frac - 0.8).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn addresses_stay_within_footprint() {
        for pattern in [
            AccessPattern::Stream,
            AccessPattern::Random,
            AccessPattern::Strided { stride: 4096 },
            AccessPattern::Clustered { locality: 0.7 },
        ] {
            let p = profile(pattern);
            for r in p.generate(1) {
                assert!(r.address < p.footprint.value(), "{pattern:?}");
                assert_eq!(r.address % 64, 0, "line aligned");
            }
        }
    }

    #[test]
    fn arrivals_are_monotone() {
        let p = profile(AccessPattern::Stream);
        let reqs = p.generate(3);
        for w in reqs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn mean_interarrival_close_to_spec() {
        let p = profile(AccessPattern::Random);
        let reqs = p.generate(11);
        let span = reqs.last().unwrap().arrival.as_nanos();
        let mean = span / (reqs.len() - 1) as f64;
        assert!((mean - 2.0).abs() < 0.2, "mean interarrival {mean} ns");
    }

    #[test]
    fn stream_pattern_is_sequential() {
        let p = profile(AccessPattern::Stream);
        let reqs = p.generate(5);
        let mut sequential = 0;
        for w in reqs.windows(2) {
            if w[1].address == (w[0].address + 64) % p.footprint.value() {
                sequential += 1;
            }
        }
        assert!(sequential as f64 / reqs.len() as f64 > 0.95);
    }

    #[test]
    fn suite_has_distinct_profiles() {
        let suite = spec_like_suite(100);
        assert_eq!(suite.len(), 8);
        let names: std::collections::HashSet<_> = suite.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), suite.len(), "names must be unique");
        // Distinct profiles generate distinct traces even with equal seeds.
        assert_ne!(suite[0].generate(1), suite[1].generate(1));
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn bad_read_fraction_rejected() {
        let mut p = profile(AccessPattern::Random);
        p.read_fraction = 1.5;
        let _ = p.generate(0);
    }
}
