//! The device timing/energy interface the controller drives.
//!
//! Every memory technology in the evaluation — 2D/3D DDR3/DDR4, EPCM-MM,
//! COSMOS and COMET — implements [`MemoryDevice`]. The controller owns
//! queueing, scheduling and bus contention; the device owns bank timing
//! state (open rows, refresh, erase bookkeeping) and per-access energy.

use crate::addr::DecodedAddress;
use crate::request::MemOp;
use comet_units::{ByteCount, Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Static shape of a memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels (each with its own data bus).
    pub channels: u64,
    /// Banks per channel.
    pub banks: u64,
    /// Rows per bank.
    pub rows: u64,
    /// Cache-line columns per row.
    pub columns: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
}

impl Topology {
    /// Total capacity.
    pub fn capacity(&self) -> ByteCount {
        ByteCount::new(self.channels * self.banks * self.rows * self.columns * self.line_bytes)
    }

    /// Total parallel banks across channels.
    pub fn total_banks(&self) -> u64 {
        self.channels * self.banks
    }
}

/// Timing and energy of one serviced access, as decided by the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessTiming {
    /// When the bank becomes free for its next access.
    pub bank_free_at: Time,
    /// When the first data beat is ready to leave the device (reads) or
    /// when the device has latched the data (writes).
    pub data_ready_at: Time,
    /// Data-bus occupancy for the line transfer.
    pub bus_occupancy: Time,
    /// Energy consumed by this access (activation + array + I/O).
    pub energy: Energy,
}

/// A memory device model: timing state machine plus energy accounting.
///
/// Implementations are stateful (`&mut self`) — they track open rows,
/// refresh deadlines and erase state internally. `access` is always called
/// with a monotonically non-decreasing `issue` time per bank.
pub trait MemoryDevice {
    /// Human-readable name used in reports (e.g. `"2D_DDR3"`).
    fn name(&self) -> String;

    /// The device shape.
    fn topology(&self) -> Topology;

    /// Earliest time the bank could accept an access issued at `at`
    /// (accounts for refresh windows and similar blackouts). The default
    /// is no additional constraint.
    fn bank_available(&mut self, _loc: &DecodedAddress, at: Time) -> Time {
        at
    }

    /// Services one access at time `issue`, updating internal state.
    fn access(&mut self, loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming;

    /// Whether an access to `loc` would hit an open row buffer — used by
    /// FR-FCFS scheduling. Devices without row buffers return `false`.
    fn row_hit(&self, _loc: &DecodedAddress) -> bool {
        false
    }

    /// Drains energy accumulated outside `access` calls (e.g. DRAM refresh).
    /// Called once by the engine at the end of a run.
    fn drain_accumulated_energy(&mut self) -> Energy {
        Energy::ZERO
    }

    /// Constant background power (standby, biasing, idle lasers...).
    fn background_power(&self) -> Power;

    /// Extra per-access controller latency added after the data transfer
    /// (e.g. COMET/COSMOS electrical interface delay of 105 ns). Reads
    /// observe it before data is usable; the default is zero.
    fn interface_delay(&self) -> Time {
        Time::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_capacity() {
        let t = Topology {
            channels: 1,
            banks: 8,
            rows: 1 << 16,
            columns: 128,
            line_bytes: 64,
        };
        assert_eq!(t.capacity().value(), 8 * 65536 * 128 * 64);
        assert_eq!(t.total_banks(), 8);
    }
}
