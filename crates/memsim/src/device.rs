//! The device timing/energy interface the controller drives.
//!
//! Every memory technology in the evaluation — 2D/3D DDR3/DDR4, EPCM-MM,
//! COSMOS and COMET — implements [`MemoryDevice`]. The controller owns
//! queueing, scheduling and bus contention; the device owns bank timing
//! state (open rows, refresh, erase bookkeeping) and per-access energy.

use crate::addr::DecodedAddress;
use crate::data::LineData;
use crate::request::MemOp;
use comet_units::{ByteCount, Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Static shape of a memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels (each with its own data bus).
    pub channels: u64,
    /// Banks per channel.
    pub banks: u64,
    /// Rows per bank.
    pub rows: u64,
    /// Cache-line columns per row.
    pub columns: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
}

impl Topology {
    /// Total capacity.
    pub fn capacity(&self) -> ByteCount {
        ByteCount::new(self.channels * self.banks * self.rows * self.columns * self.line_bytes)
    }

    /// Total parallel banks across channels.
    pub fn total_banks(&self) -> u64 {
        self.channels * self.banks
    }
}

/// Timing and energy of one serviced access, as decided by the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessTiming {
    /// When the bank becomes free for its next access.
    pub bank_free_at: Time,
    /// When the first data beat is ready to leave the device (reads) or
    /// when the device has latched the data (writes).
    pub data_ready_at: Time,
    /// Data-bus occupancy for the line transfer.
    pub bus_occupancy: Time,
    /// Energy consumed by this access (activation + array + I/O).
    pub energy: Energy,
}

/// A memory device model: timing state machine plus energy accounting.
///
/// Implementations are stateful (`&mut self`) — they track open rows,
/// refresh deadlines and erase state internally. `access` is always called
/// with a monotonically non-decreasing `issue` time per bank.
///
/// The `Send` supertrait lets sharded runners (the `comet-lab` campaign
/// subsystem) move boxed devices onto worker threads; device models are
/// plain data, so the bound costs implementations nothing.
pub trait MemoryDevice: Send {
    /// Human-readable name used in reports (e.g. `"2D_DDR3"`).
    fn name(&self) -> String;

    /// The device shape.
    fn topology(&self) -> Topology;

    /// Earliest time the bank could accept an access issued at `at`
    /// (accounts for refresh windows and similar blackouts). The default
    /// is no additional constraint.
    fn bank_available(&mut self, _loc: &DecodedAddress, at: Time) -> Time {
        at
    }

    /// Services one access at time `issue`, updating internal state.
    fn access(&mut self, loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming;

    /// [`MemoryDevice::access`] with the request's line payload attached.
    /// The engines always call this entry point; the default discards the
    /// payload and delegates, so content-oblivious devices are untouched.
    /// Content-aware devices (the EPCM data plane) override it to price
    /// writes per cell transition against a backing line store.
    fn access_line(
        &mut self,
        loc: &DecodedAddress,
        op: MemOp,
        issue: Time,
        data: Option<&LineData>,
    ) -> AccessTiming {
        let _ = data;
        self.access(loc, op, issue)
    }

    /// Whether an access to `loc` would hit an open row buffer — used by
    /// FR-FCFS scheduling. Devices without row buffers return `false`.
    fn row_hit(&self, _loc: &DecodedAddress) -> bool {
        false
    }

    /// Drains energy accumulated outside `access` calls (e.g. DRAM refresh).
    /// Called once by the engine at the end of a run.
    fn drain_accumulated_energy(&mut self) -> Energy {
        Energy::ZERO
    }

    /// Constant background power (standby, biasing, idle lasers...).
    fn background_power(&self) -> Power;

    /// Extra per-access controller latency added after the data transfer
    /// (e.g. COMET/COSMOS electrical interface delay of 105 ns). Reads
    /// observe it before data is usable; the default is zero.
    fn interface_delay(&self) -> Time {
        Time::ZERO
    }
}

/// Constructs fresh, identically configured [`MemoryDevice`] instances.
///
/// Parallel experiment runners need one device per shard (device models are
/// stateful), so experiments are described by *factories* rather than device
/// instances. A factory is `Send + Sync`: one factory is shared by every
/// worker thread and asked for a private device per simulation cell.
///
/// Device *configs* are the natural factories — `DramConfig`, `EpcmConfig`
/// (and `CometConfig`/`CosmosConfig` in their crates) all implement this
/// trait by constructing their device. For ad-hoc variants, wrap a closure
/// in [`FnFactory`].
pub trait DeviceFactory: Send + Sync {
    /// The report name of the devices this factory builds. Usually equals
    /// `MemoryDevice::name` of the built device; ad-hoc variants (see
    /// [`FnFactory`]) may use a more specific label (e.g. `"COMET-2b"`).
    fn device_name(&self) -> String;

    /// Builds a new device in its initial state.
    fn build(&self) -> Box<dyn MemoryDevice>;

    /// The topology the built devices will report. The default constructs
    /// a throwaway device and asks it; config-backed factories override
    /// this for free, so callers that only need a shape (e.g. workload
    /// line-size normalization) skip the device construction.
    fn device_topology(&self) -> Topology {
        self.build().topology()
    }
}

/// A closure-backed [`DeviceFactory`] for one-off device variants
/// (ablation sweeps, tuned configs) without a dedicated config type.
///
/// # Examples
///
/// ```
/// use memsim::{DeviceFactory, DramConfig, DramDevice, FnFactory};
///
/// let f = FnFactory::new("DDR3-closed-page", || {
///     let mut cfg = DramConfig::ddr3_1600_2d();
///     cfg.row_policy = memsim::RowPolicy::Closed;
///     Box::new(DramDevice::new(cfg))
/// });
/// assert_eq!(f.device_name(), "DDR3-closed-page");
/// let _dev = f.build();
/// ```
pub struct FnFactory {
    name: String,
    build: Box<dyn Fn() -> Box<dyn MemoryDevice> + Send + Sync>,
}

impl FnFactory {
    /// Wraps a device-building closure under a report name.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn() -> Box<dyn MemoryDevice> + Send + Sync + 'static,
    ) -> Self {
        FnFactory {
            name: name.into(),
            build: Box::new(build),
        }
    }
}

impl std::fmt::Debug for FnFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnFactory")
            .field("name", &self.name)
            .finish()
    }
}

impl DeviceFactory for FnFactory {
    fn device_name(&self) -> String {
        self.name.clone()
    }

    fn build(&self) -> Box<dyn MemoryDevice> {
        (self.build)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_capacity() {
        let t = Topology {
            channels: 1,
            banks: 8,
            rows: 1 << 16,
            columns: 128,
            line_bytes: 64,
        };
        assert_eq!(t.capacity().value(), 8 * 65536 * 128 * 64);
        assert_eq!(t.total_banks(), 8);
    }
}
