//! Electrically controlled PCM main memory (the paper's `EPCM-MM` baseline).
//!
//! A 1T-1R PCM array: non-volatile (no refresh), read latency comparable to
//! DRAM, but asymmetric and slow writes (RESET melt pulses / SET
//! crystallization pulses driven by current). Timing/energy follow the
//! LL-PCM / DyPhase class of EPCM main-memory proposals the paper cites.

use crate::addr::DecodedAddress;
use crate::device::{AccessTiming, DeviceFactory, MemoryDevice, Topology};
use crate::request::MemOp;
use comet_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// EPCM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpcmConfig {
    /// Report name.
    pub name: String,
    /// Shape.
    pub topology: Topology,
    /// Array read latency (sense).
    pub read_latency: Time,
    /// Array write latency (worst of SET/RESET for a line).
    pub write_latency: Time,
    /// Data-bus beat period.
    pub bus_beat: Time,
    /// Bus width, bits.
    pub bus_bits: u32,
    /// Read energy per line.
    pub read_line: Energy,
    /// Write energy per line (RESET-dominated).
    pub write_line: Energy,
    /// Background power (peripheral circuits; no refresh).
    pub background: Power,
}

impl EpcmConfig {
    /// The paper's `EPCM-MM` baseline: 8 banks, 60 ns reads, 150 ns writes,
    /// x16 bus at 800 MT/s.
    pub fn epcm_mm() -> Self {
        EpcmConfig {
            name: "EPCM-MM".into(),
            topology: Topology {
                channels: 1,
                banks: 8,
                rows: 1 << 16,
                columns: 128,
                line_bytes: 64,
            },
            read_latency: Time::from_nanos(60.0),
            write_latency: Time::from_nanos(150.0),
            bus_beat: Time::from_nanos(1.25),
            bus_bits: 16,
            read_line: Energy::from_nanojoules(1.0),
            write_line: Energy::from_nanojoules(8.0),
            background: Power::from_milliwatts(150.0),
        }
    }

    /// Bus occupancy for one line (DDR signaling).
    pub fn line_transfer(&self) -> Time {
        let beats = (self.topology.line_bytes * 8) as f64 / self.bus_bits as f64;
        self.bus_beat * (beats / 2.0)
    }
}

/// A stateless-timing EPCM device (no rows to keep open, no refresh).
///
/// # Examples
///
/// ```
/// use memsim::{EpcmConfig, EpcmDevice, MemoryDevice};
///
/// let dev = EpcmDevice::new(EpcmConfig::epcm_mm());
/// assert_eq!(dev.name(), "EPCM-MM");
/// ```
#[derive(Debug, Clone)]
pub struct EpcmDevice {
    config: EpcmConfig,
}

impl EpcmDevice {
    /// Creates a device.
    pub fn new(config: EpcmConfig) -> Self {
        EpcmDevice { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EpcmConfig {
        &self.config
    }
}

impl DeviceFactory for EpcmConfig {
    fn device_name(&self) -> String {
        self.name.clone()
    }

    fn build(&self) -> Box<dyn MemoryDevice> {
        Box::new(EpcmDevice::new(self.clone()))
    }

    fn device_topology(&self) -> Topology {
        self.topology
    }
}

impl MemoryDevice for EpcmDevice {
    fn name(&self) -> String {
        self.config.name.clone()
    }

    fn topology(&self) -> Topology {
        self.config.topology
    }

    fn access(&mut self, _loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming {
        let transfer = self.config.line_transfer();
        match op {
            MemOp::Read => {
                let data_ready = issue + self.config.read_latency;
                AccessTiming {
                    bank_free_at: data_ready + transfer,
                    data_ready_at: data_ready,
                    bus_occupancy: transfer,
                    energy: self.config.read_line,
                }
            }
            MemOp::Write => {
                // Data moves first, then the slow array write holds the bank.
                let data_ready = issue + transfer;
                AccessTiming {
                    bank_free_at: data_ready + self.config.write_latency,
                    data_ready_at: data_ready,
                    bus_occupancy: transfer,
                    energy: self.config.write_line,
                }
            }
        }
    }

    fn background_power(&self) -> Power {
        self.config.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> DecodedAddress {
        DecodedAddress {
            channel: 0,
            bank: 0,
            row: 0,
            column: 0,
        }
    }

    #[test]
    fn asymmetric_write_latency() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        let r = dev.access(&loc(), MemOp::Read, Time::ZERO);
        let w = dev.access(&loc(), MemOp::Write, Time::ZERO);
        assert!(w.bank_free_at.as_nanos() > r.bank_free_at.as_nanos() * 1.5);
        assert!(w.energy > r.energy * 3.0);
    }

    #[test]
    fn no_refresh_blackouts() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        // bank_available is the default (identity): never blocked.
        let at = Time::from_micros(100.0);
        assert_eq!(dev.bank_available(&loc(), at), at);
    }

    #[test]
    fn transfer_time() {
        // 64 B over x16 DDR at 1.25 ns beat-pair: 32 beats -> 20 ns.
        let cfg = EpcmConfig::epcm_mm();
        assert!((cfg.line_transfer().as_nanos() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reads_are_deterministic() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        let a = dev.access(&loc(), MemOp::Read, Time::from_nanos(100.0));
        let b = dev.access(&loc(), MemOp::Read, Time::from_nanos(100.0));
        assert_eq!(a, b);
    }
}
