//! Electrically controlled PCM main memory (the paper's `EPCM-MM` baseline).
//!
//! A 1T-1R PCM array: non-volatile (no refresh), read latency comparable to
//! DRAM, but asymmetric and slow writes (RESET melt pulses / SET
//! crystallization pulses driven by current). Timing/energy follow the
//! LL-PCM / DyPhase class of EPCM main-memory proposals the paper cites.
//!
//! The device optionally carries a **data plane**
//! ([`EpcmDevice::with_pricer`]): a backing line store of pricer-private
//! cell images plus a [`WritePricer`] that prices each write from its
//! content (per-cell level transitions, DCW/Flip-N-Write write reduction —
//! the policies live in `comet-data`). Without a pricer — or for requests
//! that carry no payload — the flat `write_line` cost stays authoritative,
//! so the content-oblivious baseline is untouched.

use crate::addr::DecodedAddress;
use crate::data::{LineData, WritePricer};
use crate::device::{AccessTiming, DeviceFactory, MemoryDevice, Topology};
use crate::request::MemOp;
use comet_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// EPCM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpcmConfig {
    /// Report name.
    pub name: String,
    /// Shape.
    pub topology: Topology,
    /// Array read latency (sense).
    pub read_latency: Time,
    /// Array write latency (worst of SET/RESET for a line).
    pub write_latency: Time,
    /// Data-bus beat period.
    pub bus_beat: Time,
    /// Bus width, bits.
    pub bus_bits: u32,
    /// Read energy per line.
    pub read_line: Energy,
    /// Write energy per line (RESET-dominated).
    pub write_line: Energy,
    /// Background power (peripheral circuits; no refresh).
    pub background: Power,
}

impl EpcmConfig {
    /// The paper's `EPCM-MM` baseline: 8 banks, 60 ns reads, 150 ns writes,
    /// x16 bus at 800 MT/s.
    pub fn epcm_mm() -> Self {
        EpcmConfig {
            name: "EPCM-MM".into(),
            topology: Topology {
                channels: 1,
                banks: 8,
                rows: 1 << 16,
                columns: 128,
                line_bytes: 64,
            },
            read_latency: Time::from_nanos(60.0),
            write_latency: Time::from_nanos(150.0),
            bus_beat: Time::from_nanos(1.25),
            bus_bits: 16,
            read_line: Energy::from_nanojoules(1.0),
            write_line: Energy::from_nanojoules(8.0),
            background: Power::from_milliwatts(150.0),
        }
    }

    /// Bus occupancy for one line (DDR signaling).
    pub fn line_transfer(&self) -> Time {
        let beats = (self.topology.line_bytes * 8) as f64 / self.bus_bits as f64;
        self.bus_beat * (beats / 2.0)
    }
}

/// Running counters of a device's data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataPlaneStats {
    /// Writes priced from their content.
    pub priced_writes: u64,
    /// Writes priced at the unknown-content worst case (no payload).
    pub unpriced_writes: u64,
    /// Cells actually reprogrammed across priced writes.
    pub cells_written: u64,
    /// Cells the priced writes spanned.
    pub cells_total: u64,
}

/// The optional content-aware write path of an [`EpcmDevice`].
#[derive(Debug)]
struct DataPlane {
    pricer: Box<dyn WritePricer>,
    /// Per-line cell images, keyed by decoded location. Each line lives in
    /// exactly one channel, so channel-sharded service runs stay
    /// byte-identical for any shard count.
    store: HashMap<(u64, u64, u64, u64), Vec<u8>>,
    stats: DataPlaneStats,
}

/// A stateless-timing EPCM device (no rows to keep open, no refresh).
///
/// # Examples
///
/// ```
/// use memsim::{EpcmConfig, EpcmDevice, MemoryDevice};
///
/// let dev = EpcmDevice::new(EpcmConfig::epcm_mm());
/// assert_eq!(dev.name(), "EPCM-MM");
/// ```
#[derive(Debug)]
pub struct EpcmDevice {
    config: EpcmConfig,
    data: Option<DataPlane>,
}

impl EpcmDevice {
    /// Creates a flat-cost device (every write prices at `write_line`).
    pub fn new(config: EpcmConfig) -> Self {
        EpcmDevice { config, data: None }
    }

    /// Creates a content-aware device: writes that carry a payload are
    /// priced by `pricer` against the line's previously stored cell image
    /// instead of the flat `write_line`/`write_latency` pair. Reads and
    /// payload-less writes keep the flat path (the latter at the pricer's
    /// unknown-content worst case).
    pub fn with_pricer(config: EpcmConfig, pricer: Box<dyn WritePricer>) -> Self {
        EpcmDevice {
            config,
            data: Some(DataPlane {
                pricer,
                store: HashMap::new(),
                stats: DataPlaneStats::default(),
            }),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EpcmConfig {
        &self.config
    }

    /// Data-plane counters (`None` for flat-cost devices).
    pub fn data_plane_stats(&self) -> Option<DataPlaneStats> {
        self.data.as_ref().map(|d| d.stats)
    }

    /// Timing skeleton of a write: transfer first, then the array holds
    /// the bank for `array` (the flat path passes `write_latency`; the
    /// content-aware path the priced pulse occupancy).
    fn write_timing(&self, issue: Time, array: Time, energy: Energy) -> AccessTiming {
        let transfer = self.config.line_transfer();
        let data_ready = issue + transfer;
        AccessTiming {
            bank_free_at: data_ready + array,
            data_ready_at: data_ready,
            bus_occupancy: transfer,
            energy,
        }
    }
}

impl DeviceFactory for EpcmConfig {
    fn device_name(&self) -> String {
        self.name.clone()
    }

    fn build(&self) -> Box<dyn MemoryDevice> {
        Box::new(EpcmDevice::new(self.clone()))
    }

    fn device_topology(&self) -> Topology {
        self.topology
    }
}

impl MemoryDevice for EpcmDevice {
    fn name(&self) -> String {
        self.config.name.clone()
    }

    fn topology(&self) -> Topology {
        self.config.topology
    }

    fn access(&mut self, _loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming {
        let transfer = self.config.line_transfer();
        match op {
            MemOp::Read => {
                let data_ready = issue + self.config.read_latency;
                AccessTiming {
                    bank_free_at: data_ready + transfer,
                    data_ready_at: data_ready,
                    bus_occupancy: transfer,
                    energy: self.config.read_line,
                }
            }
            // Data moves first, then the slow array write holds the bank.
            MemOp::Write => {
                self.write_timing(issue, self.config.write_latency, self.config.write_line)
            }
        }
    }

    fn access_line(
        &mut self,
        loc: &DecodedAddress,
        op: MemOp,
        issue: Time,
        data: Option<&LineData>,
    ) -> AccessTiming {
        // Reads never consult the pricer; flat devices have none.
        if op.is_read() || self.data.is_none() {
            return self.access(loc, op, issue);
        }
        let plane = self.data.as_mut().expect("checked above");
        let key = (loc.channel, loc.bank, loc.row, loc.column);
        let cost = match data {
            Some(line) => {
                let priced = plane
                    .pricer
                    .price_write(plane.store.get(&key).map(Vec::as_slice), line);
                match priced.image {
                    Some(image) => {
                        plane.store.insert(key, image);
                    }
                    None => {
                        plane.store.remove(&key);
                    }
                }
                plane.stats.priced_writes += 1;
                plane.stats.cells_written += priced.cost.cells_written;
                plane.stats.cells_total += priced.cost.cells_total;
                priced.cost
            }
            None => {
                // Unknown content: worst-case price, and the stored image
                // no longer describes the line.
                plane.store.remove(&key);
                plane.stats.unpriced_writes += 1;
                plane.pricer.price_unknown(self.config.topology.line_bytes)
            }
        };
        self.write_timing(issue, cost.latency, cost.energy)
    }

    fn background_power(&self) -> Power {
        self.config.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> DecodedAddress {
        DecodedAddress {
            channel: 0,
            bank: 0,
            row: 0,
            column: 0,
        }
    }

    #[test]
    fn asymmetric_write_latency() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        let r = dev.access(&loc(), MemOp::Read, Time::ZERO);
        let w = dev.access(&loc(), MemOp::Write, Time::ZERO);
        assert!(w.bank_free_at.as_nanos() > r.bank_free_at.as_nanos() * 1.5);
        assert!(w.energy > r.energy * 3.0);
    }

    #[test]
    fn no_refresh_blackouts() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        // bank_available is the default (identity): never blocked.
        let at = Time::from_micros(100.0);
        assert_eq!(dev.bank_available(&loc(), at), at);
    }

    #[test]
    fn transfer_time() {
        // 64 B over x16 DDR at 1.25 ns beat-pair: 32 beats -> 20 ns.
        let cfg = EpcmConfig::epcm_mm();
        assert!((cfg.line_transfer().as_nanos() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reads_are_deterministic() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        let a = dev.access(&loc(), MemOp::Read, Time::from_nanos(100.0));
        let b = dev.access(&loc(), MemOp::Read, Time::from_nanos(100.0));
        assert_eq!(a, b);
    }

    /// A toy pricer: 1 pJ and 1 ns per byte that differs from the stored
    /// image (all bytes on first touch); the image is the raw payload.
    #[derive(Debug)]
    struct BytePricer;

    impl crate::WritePricer for BytePricer {
        fn price_write(&self, stored: Option<&[u8]>, data: &crate::LineData) -> crate::PricedWrite {
            let new = data.bytes();
            let changed = match stored {
                Some(old) => new
                    .iter()
                    .zip(old.iter().chain(std::iter::repeat(&0)))
                    .filter(|(n, o)| n != o)
                    .count(),
                None => new.len(),
            } as u64;
            crate::PricedWrite {
                cost: crate::WriteCost {
                    energy: Energy::from_picojoules(changed as f64),
                    latency: Time::from_nanos(changed as f64),
                    cells_written: changed,
                    cells_total: new.len() as u64,
                },
                image: Some(new.to_vec()),
            }
        }

        fn price_unknown(&self, line_bytes: u64) -> crate::WriteCost {
            crate::WriteCost {
                energy: Energy::from_picojoules(line_bytes as f64),
                latency: Time::from_nanos(line_bytes as f64),
                cells_written: line_bytes,
                cells_total: line_bytes,
            }
        }
    }

    #[test]
    fn content_aware_writes_price_against_the_line_store() {
        let mut dev = EpcmDevice::with_pricer(EpcmConfig::epcm_mm(), Box::new(BytePricer));
        let line = crate::LineData::from_bytes(&[7u8; 64]);
        // First touch: every byte programs.
        let a = dev.access_line(&loc(), MemOp::Write, Time::ZERO, Some(&line));
        assert!((a.energy.as_picojoules() - 64.0).abs() < 1e-9);
        // Rewriting identical content is free array-wise.
        let b = dev.access_line(&loc(), MemOp::Write, Time::ZERO, Some(&line));
        assert_eq!(b.energy, Energy::ZERO);
        assert_eq!(
            b.bank_free_at, b.data_ready_at,
            "conserved write holds no array time"
        );
        // One changed byte prices one transition.
        let mut bytes = [7u8; 64];
        bytes[3] = 9;
        let c = dev.access_line(
            &loc(),
            MemOp::Write,
            Time::ZERO,
            Some(&crate::LineData::from_bytes(&bytes)),
        );
        assert!((c.energy.as_picojoules() - 1.0).abs() < 1e-9);
        let stats = dev.data_plane_stats().expect("data plane present");
        assert_eq!(stats.priced_writes, 3);
        assert_eq!(stats.cells_written, 65);
        assert_eq!(stats.cells_total, 3 * 64);
    }

    #[test]
    fn payloadless_writes_invalidate_the_store() {
        let mut dev = EpcmDevice::with_pricer(EpcmConfig::epcm_mm(), Box::new(BytePricer));
        let line = crate::LineData::from_bytes(&[7u8; 64]);
        let _ = dev.access_line(&loc(), MemOp::Write, Time::ZERO, Some(&line));
        // No payload: worst-case price, image dropped...
        let unknown = dev.access_line(&loc(), MemOp::Write, Time::ZERO, None);
        assert!((unknown.energy.as_picojoules() - 64.0).abs() < 1e-9);
        // ...so the next identical payload programs from scratch.
        let again = dev.access_line(&loc(), MemOp::Write, Time::ZERO, Some(&line));
        assert!((again.energy.as_picojoules() - 64.0).abs() < 1e-9);
        assert_eq!(dev.data_plane_stats().unwrap().unpriced_writes, 1);
    }

    #[test]
    fn flat_devices_ignore_payloads() {
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        let line = crate::LineData::zeroes(64);
        let with = dev.access_line(&loc(), MemOp::Write, Time::ZERO, Some(&line));
        let without = dev.access(&loc(), MemOp::Write, Time::ZERO);
        assert_eq!(with, without);
        assert!(dev.data_plane_stats().is_none());
    }
}
