//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] built on
//! SplitMix64 plus the [`Rng`]/[`SeedableRng`] trait surface the
//! workspace uses (`seed_from_u64`, `gen_range`, `gen_bool`). The
//! simulator only needs *reproducible, well-mixed* streams for synthetic
//! trace generation — not cryptographic quality — so SplitMix64 is a
//! faithful stand-in. Swap the workspace `rand` entry back to the
//! registry to use the real crate.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Subset of `rand::Rng` used by the workspace.
pub trait Rng {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

/// Subset of `rand::SeedableRng` used by the workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SampleRange, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` using the top 53 bits.
        pub(crate) fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample_from(self)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            self.unit_f64() < p.clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0u64..100);
            assert_eq!(x, b.gen_range(0u64..100));
            assert!(x < 100);
            let f = a.gen_range(0.0..2.0f64);
            assert!((0.0..2.0).contains(&b.gen_range(0.0..2.0f64)));
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
