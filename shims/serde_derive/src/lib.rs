//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace is built in environments without registry access (see
//! `shims/README.md`), and the simulator only ever *derives*
//! `Serialize`/`Deserialize` — nothing serializes through a data format
//! yet. These derives therefore accept the full attribute syntax and
//! expand to an empty token stream. Swapping in the real `serde_derive`
//! is a two-line change in the workspace manifest.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
