//! Offline stand-in for the `criterion` crate.
//!
//! Provides the criterion 0.5 API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — measuring wall-clock time with
//! `std::time::Instant` and printing one line per benchmark. There are
//! no statistical analyses, plots, or baselines; swap the workspace
//! `criterion` entry back to the registry for those.
//!
//! Under `cargo test` (which runs bench targets with `--test`) each
//! benchmark body executes exactly once, so the tier-1 suite stays fast
//! while still smoke-testing every bench.

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: if self.test_mode { 1 } else { self.sample_size },
            total_nanos: 0,
            timed_iterations: 0,
        };
        f(&mut bencher);
        bencher.report(id, self.test_mode);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.bench_function(&full, f);
        self.parent.sample_size = saved;
        self
    }

    /// Ends the group. (No-op in this shim; present for API parity.)
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    total_nanos: u128,
    timed_iterations: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing every call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call unless in single-shot test mode.
        if self.iterations > 1 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.timed_iterations += self.iterations;
    }

    fn report(&self, id: &str, test_mode: bool) {
        if test_mode {
            println!("bench {id}: ok (ran once in test mode)");
        } else if self.timed_iterations > 0 {
            let mean = self.total_nanos / self.timed_iterations as u128;
            println!(
                "bench {id}: {mean} ns/iter (mean over {} iterations)",
                self.timed_iterations
            );
        } else {
            println!("bench {id}: no iterations recorded");
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        compile_error!("the criterion shim only supports criterion_group!(name, targets...)");
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
