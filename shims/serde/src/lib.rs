//! Offline stand-in for the `serde` crate.
//!
//! The simulator derives `Serialize`/`Deserialize` on its config and
//! report types so that downstream tooling can serialize them once the
//! real `serde` is available, but no code path serializes through a data
//! format today. This shim provides the two marker traits and re-exports
//! the pass-through derives so the `use serde::{Deserialize, Serialize}`
//! + `#[derive(...)]` idiom compiles unchanged in offline builds.
//!
//! To use the real crates.io `serde`, point the `serde` entry in the
//! workspace `[workspace.dependencies]` table back at the registry.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The derive in this shim expands to nothing, so types are *not*
/// automatically marked; the trait exists only so that bounds written
/// against it keep compiling.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
