//! Input strategies: how test-case values are generated.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test-case inputs.
///
/// The real proptest couples generation with shrinking; this shim only
/// generates, so the trait is a single method plus combinators.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Erases the strategy type, for heterogeneous collections such as
    /// [`prop_oneof!`](crate::prop_oneof) arms.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over the full domain of `T` (`any::<u8>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn ErasedStrategy<V>>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait ErasedStrategy<V> {
    fn generate_erased(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice among strategies; built by [`prop_oneof!`](crate::prop_oneof).
#[derive(Debug)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }

        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

/// Whole-domain strategy for `bool`.
#[derive(Debug, Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
