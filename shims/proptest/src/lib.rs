//! Offline stand-in for the `proptest` crate.
//!
//! Implements the proptest 1.x API subset the workspace's property tests
//! use — the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range/tuple/[`strategy::Just`]/[`prop_oneof!`] strategies,
//! [`collection::vec`], and the `prop_assert*`/[`prop_assume!`] macros —
//! on top of a deterministic SplitMix64 generator seeded from the test
//! name. There is no shrinking: a failing case panics with the case
//! number and message, and re-running reproduces it exactly.
//!
//! Case count defaults to 64 per property and can be raised with the
//! `PROPTEST_CASES` environment variable, mirroring real proptest. Swap
//! the workspace `proptest` entry back to the registry to use the real
//! crate (shrinking included) when network access is available.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fallible assertion: fails the current case (with generated inputs
/// reported by the runner) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion, formatting both operands with `{:?}`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Discards the current case (without counting it) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly among the given strategies (all must share a value
/// type). Weighted arms are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
