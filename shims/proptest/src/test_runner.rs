//! Deterministic case runner and RNG behind the [`proptest!`](crate::proptest) macro.

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case without counting it.
    Reject,
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Deterministic SplitMix64 stream strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so every run of a given test
    /// sees the same inputs.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives decorrelated streams per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` using the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs one property over `PROPTEST_CASES` (default 64) generated cases,
/// panicking on the first failing case.
pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = configured_cases();
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    // Cap total attempts so a too-strict prop_assume! cannot spin forever.
    let max_attempts = cases.saturating_mul(20);
    while passed < cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(message)) => panic!(
                "property `{name}` failed at case {} (attempt {attempts}, \
                 deterministic seed from test name): {message}",
                passed + 1
            ),
        }
    }
    assert!(
        passed > 0,
        "property `{name}`: every generated case was rejected by prop_assume!"
    );
}
