//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::TestCaseError;
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

/// Re-export of the crate root under the conventional `prop` alias, so
/// `prop::collection::vec(...)` works after a prelude glob import.
pub use crate as prop;
